//! Drive the SIMT GPU simulator directly: launch the offload-style and
//! vendor (cuSPARSE-like) kernels on both device profiles and inspect the
//! coalescing/occupancy statistics behind the paper's GPU studies.
//!
//! ```text
//! cargo run --release --example gpu_simulation
//! ```

use spmm_bench::core::{CsrMatrix, DenseMatrix, EllMatrix};
use spmm_bench::gpusim::{kernels, vendor, DeviceProfile};
use spmm_bench::matgen;

fn main() {
    let spec = matgen::by_name("pdb1HYS").expect("pdb1HYS is in the suite");
    let coo = spec.generate(0.05, 3);
    let k = 64;
    let b = DenseMatrix::from_fn(coo.cols(), k, |i, j| ((i * 3 + j) % 11) as f64 - 5.0);
    let reference = coo.spmm_reference_k(&b, k);
    let csr = CsrMatrix::from_coo(&coo);
    let ell = EllMatrix::from_coo(&coo).expect("ELL constructs");
    let useful = spmm_bench::kernels::spmm_flops(coo.nnz(), k);

    println!("matrix: pdb1HYS replica — {}", coo.properties());
    println!(
        "{:<22} {:<18} {:>10} {:>12} {:>10} {:>9}",
        "device", "kernel", "MFLOPS", "DRAM MB", "sect/inst", "occupancy"
    );

    for device in [DeviceProfile::h100(), DeviceProfile::a100()] {
        let mut c = DenseMatrix::zeros(coo.rows(), k);
        let show = |kernel: &str, stats: spmm_bench::gpusim::LaunchStats, c: &DenseMatrix<f64>| {
            // Tolerance, not equality: the warp-cooperative kernels sum a
            // row's terms in a different order than the reference.
            let err = spmm_bench::core::max_rel_error(c, &reference);
            assert!(err < 1e-9, "{kernel} diverged: {err}");
            println!(
                "{:<22} {:<18} {:>10.0} {:>12.2} {:>10.1} {:>9.3}",
                device.name,
                kernel,
                stats.mflops(useful),
                stats.dram_bytes / 1e6,
                stats.sectors_per_instruction,
                stats.occupancy,
            );
        };

        let s = kernels::csr_spmm_gpu(&device, &csr, &b, k, &mut c);
        show("csr (omp offload)", s, &c);
        let s = kernels::coo_spmm_gpu(&device, &coo, &b, k, &mut c);
        show("coo (omp offload)", s, &c);
        let s = kernels::ell_spmm_gpu(&device, &ell, &b, k, &mut c);
        show("ell (omp offload)", s, &c);
        let s = vendor::cusparse_csr_spmm(&device, &csr, &b, k, &mut c);
        show("csr (cuSPARSE-like)", s, &c);
        let s = vendor::cusparse_coo_spmm(&device, &coo, &b, k, &mut c);
        show("coo (cuSPARSE-like)", s, &c);
    }

    println!("\n(every kernel's result is checked against the CPU reference;");
    println!(" the vendor kernels win on time because they skip the offload");
    println!(" runtime penalty and coalesce A's entry stream warp-wide)");
}
