//! Extending the suite with a custom format (the §4.1 design claim).
//!
//! The thesis's C++ suite is a base class: "a custom format will simply
//! extend the class, and re-implement the calculation and formatting
//! functions". The Rust rendering is the [`SpmmBenchmark`] trait. This
//! example adds the classic DIA (diagonal) format — not one of the suite's
//! built-ins — implements `format()`/`calc()` for it, and runs it through
//! the same timing/verification loop as the built-in kernels.
//!
//! ```text
//! cargo run --release --example custom_format
//! ```

use std::time::Instant;

use spmm_bench::core::{suggested_tolerance, verify, CooMatrix, DenseMatrix, Scalar, VerifyError};
use spmm_bench::harness::SpmmBenchmark;
use spmm_bench::matgen;

/// DIA format: one dense array per occupied diagonal.
///
/// Ideal for stencil matrices (every diagonal full), hopeless for
/// scattered ones (every touched diagonal stores `rows` slots).
struct DiaMatrix<T> {
    rows: usize,
    cols: usize,
    /// Offsets of the stored diagonals (`j - i`), ascending.
    offsets: Vec<isize>,
    /// `offsets.len() * rows` values; diagonal `d`'s slot for row `i` is
    /// `d * rows + i`. Out-of-matrix slots hold zero.
    values: Vec<T>,
    nnz: usize,
}

impl<T: Scalar> DiaMatrix<T> {
    fn from_coo(coo: &CooMatrix<T>) -> Self {
        let rows = coo.rows();
        let mut offsets: Vec<isize> = coo
            .iter()
            .map(|(i, j, _)| j as isize - i as isize)
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        let mut values = vec![T::ZERO; offsets.len() * rows];
        for (i, j, v) in coo.iter() {
            let off = j as isize - i as isize;
            let d = offsets.binary_search(&off).expect("offset was collected");
            values[d * rows + i] = v;
        }
        DiaMatrix {
            rows,
            cols: coo.cols(),
            offsets,
            values,
            nnz: coo.nnz(),
        }
    }

    /// SpMM: one pass per diagonal; within a diagonal both A and B advance
    /// sequentially — the format's whole point.
    fn spmm(&self, b: &DenseMatrix<T>, k: usize, c: &mut DenseMatrix<T>) {
        assert_eq!(self.cols, b.rows());
        c.clear();
        for (d, &off) in self.offsets.iter().enumerate() {
            let diag = &self.values[d * self.rows..(d + 1) * self.rows];
            let i_lo = (-off).max(0) as usize;
            let i_hi = self.rows.min((self.cols as isize - off).max(0) as usize);
            #[allow(clippy::needless_range_loop)] // i indexes diag, b and c together
            for i in i_lo..i_hi {
                let v = diag[i];
                if v == T::ZERO {
                    continue;
                }
                let j = (i as isize + off) as usize;
                let b_row = &b.row(j)[..k];
                let c_row = &mut c.row_mut(i)[..k];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv = v.mul_add(bv, *cv);
                }
            }
        }
    }
}

/// The custom benchmark: exactly the trait a built-in kernel implements.
struct DiaBenchmark {
    coo: CooMatrix<f64>,
    b: DenseMatrix<f64>,
    c: DenseMatrix<f64>,
    k: usize,
    dia: Option<DiaMatrix<f64>>,
}

impl SpmmBenchmark for DiaBenchmark {
    fn name(&self) -> String {
        "dia/serial/normal".to_string()
    }

    fn format(&mut self) -> Result<(), spmm_bench::harness::HarnessError> {
        self.dia = Some(DiaMatrix::from_coo(&self.coo));
        Ok(())
    }

    fn calc(&mut self) -> Result<(), spmm_bench::harness::HarnessError> {
        let dia = self.dia.as_ref().ok_or_else(|| {
            spmm_bench::harness::HarnessError::Calc("calc() before format()".into())
        })?;
        dia.spmm(&self.b, self.k, &mut self.c);
        Ok(())
    }

    fn verify(&self) -> Result<(), VerifyError> {
        let reference = self.coo.spmm_reference_k(&self.b, self.k);
        verify(&self.c, &reference, suggested_tolerance::<f64>(64))
    }

    fn useful_flops(&self) -> u64 {
        spmm_bench::kernels::spmm_flops(self.coo.nnz(), self.k)
    }
}

fn main() {
    // A banded matrix: DIA's home turf.
    let coo = matgen::gen::stencil(50_000, &[-100, -1, 0, 1, 100], 5);
    let k = 32;
    let b = matgen::gen::dense_b(coo.cols(), k, 9);

    let mut bench = DiaBenchmark {
        c: DenseMatrix::zeros(coo.rows(), k),
        b,
        coo,
        k,
        dia: None,
    };

    // The same loop the suite's runner applies to built-in kernels.
    let t0 = Instant::now();
    bench.format().expect("formatting succeeds");
    let format_time = t0.elapsed();

    bench.calc().expect("warm-up calc");
    let iterations = 5;
    let t0 = Instant::now();
    for _ in 0..iterations {
        bench.calc().expect("calc");
    }
    let avg = t0.elapsed() / iterations;

    bench
        .verify()
        .expect("DIA result matches the COO reference");

    let dia = bench.dia.as_ref().unwrap();
    println!(
        "custom format: {} ({} diagonals, {} stored slots for {} nnz)",
        bench.name(),
        dia.offsets.len(),
        dia.values.len(),
        dia.nnz
    );
    println!("format time: {:.3} ms", format_time.as_secs_f64() * 1e3);
    println!(
        "calc time:   {:.3} ms avg -> {:.0} MFLOPS",
        avg.as_secs_f64() * 1e3,
        bench.useful_flops() as f64 / avg.as_secs_f64() / 1e6
    );
    println!("verify:      PASSED");
}
