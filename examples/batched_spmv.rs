//! Batched vectors: many SpMVs vs one SpMM (§2.3 of the paper).
//!
//! When several vectors must be multiplied by the same sparse matrix, the
//! vectors can be "stacked" into a dense matrix and processed as one SpMM.
//! The paper argues this is potentially more efficient than repeated SpMV
//! because the formatted matrix A is traversed once per batch instead of
//! once per vector. This example measures exactly that trade.
//!
//! ```text
//! cargo run --release --example batched_spmv
//! ```

use std::time::Instant;

use spmm_bench::core::{CsrMatrix, DenseMatrix};
use spmm_bench::kernels::{serial, spmv};
use spmm_bench::matgen;

fn main() {
    let spec = matgen::by_name("cant").expect("cant is in the suite");
    let coo = spec.generate(0.05, 7);
    let csr = CsrMatrix::from_coo(&coo);
    let n = coo.cols();
    println!("matrix: cant replica — {}", coo.properties());

    for batch in [1usize, 4, 16, 64] {
        // The batch of vectors, as columns of a dense B.
        let b = DenseMatrix::from_fn(n, batch, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);

        // One SpMV per vector.
        let start = Instant::now();
        let mut ys = vec![vec![0.0f64; coo.rows()]; batch];
        let mut x = vec![0.0f64; n];
        for (j, y) in ys.iter_mut().enumerate() {
            for (i, xv) in x.iter_mut().enumerate() {
                *xv = b.get(i, j);
            }
            spmv::csr_spmv(&csr, &x, y);
        }
        let spmv_t = start.elapsed();

        // One SpMM over the stacked batch.
        let start = Instant::now();
        let mut c = DenseMatrix::zeros(coo.rows(), batch);
        serial::csr_spmm(&csr, &b, batch, &mut c);
        let spmm_t = start.elapsed();

        // Same math, same numbers.
        for (j, y) in ys.iter().enumerate() {
            for (i, &v) in y.iter().enumerate() {
                assert_eq!(v, c.get(i, j), "batch {batch}, vector {j}, row {i}");
            }
        }

        println!(
            "batch {batch:>3}: {batch:>3} x SpMV = {:>8.2} ms | 1 x SpMM = {:>8.2} ms | speedup {:.2}x",
            spmv_t.as_secs_f64() * 1e3,
            spmm_t.as_secs_f64() * 1e3,
            spmv_t.as_secs_f64() / spmm_t.as_secs_f64(),
        );
    }
    println!("(SpMM wins as the batch grows: A streams once per batch, not once per vector)");
}
