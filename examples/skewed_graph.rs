//! Padding-repair formats on a power-law graph.
//!
//! R-MAT graphs have hub vertices whose rows dwarf the average — exactly
//! the skew that makes plain ELLPACK explode (the paper's `torso1`
//! problem). This example builds an R-MAT adjacency matrix and compares
//! ELLPACK against the two repair strategies this reproduction adds:
//! SELL-C-σ (sort similar rows into shared slices) and HYB (spill the
//! hubs into a COO tail).
//!
//! ```text
//! cargo run --release --example skewed_graph
//! ```

use std::time::Instant;

use spmm_bench::core::{
    DenseMatrix, EllMatrix, HybMatrix, MemoryFootprint, SellMatrix, SparseMatrix,
};
use spmm_bench::kernels::{extended, serial, spmm_flops};
use spmm_bench::matgen;

fn main() {
    // 2^13 vertices, ~8 edges per vertex, classic RMAT skew parameters.
    let graph = matgen::gen::rmat(13, 65_536, 0.57, 0.19, 0.19, 7);
    let p = graph.properties();
    println!("R-MAT graph: {} vertices, {} edges", p.rows, p.nnz);
    println!(
        "row-degree skew: max {} vs avg {:.1} (column ratio {:.1})\n",
        p.max_row_nnz, p.avg_row_nnz, p.column_ratio
    );

    let k = 32;
    let b = matgen::gen::dense_b(graph.cols(), k, 3);
    let reference = graph.spmm_reference_k(&b, k);
    let useful = spmm_flops(graph.nnz(), k);

    let ell = EllMatrix::from_coo(&graph).expect("ELL constructs");
    let sell = SellMatrix::from_coo(&graph, 8, 256).expect("valid SELL params");
    let hyb = HybMatrix::from_coo(&graph).expect("HYB constructs");

    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>10}",
        "format", "stored slots", "slots/nnz", "bytes", "MFLOPS"
    );
    let report =
        |name: &str, stored: usize, bytes: usize, run: &mut dyn FnMut(&mut DenseMatrix<f64>)| {
            let mut c = DenseMatrix::zeros(graph.rows(), k);
            run(&mut c); // warm-up + correctness
            assert!(
                spmm_bench::core::max_rel_error(&c, &reference) < 1e-10,
                "{name} diverged"
            );
            let start = Instant::now();
            for _ in 0..3 {
                run(&mut c);
            }
            let avg = start.elapsed().as_secs_f64() / 3.0;
            println!(
                "{name:<10} {stored:>14} {:>12.2} {bytes:>12} {:>10.0}",
                stored as f64 / graph.nnz() as f64,
                useful as f64 / avg / 1e6
            );
        };

    report(
        "ell",
        ell.stored_entries(),
        ell.memory_footprint(),
        &mut |c| serial::ell_spmm(&ell, &b, k, c),
    );
    report(
        "sell-8-256",
        sell.stored_entries(),
        sell.memory_footprint(),
        &mut |c| extended::sell_spmm(&sell, &b, k, c),
    );
    report(
        "hyb",
        SparseMatrix::stored_entries(&hyb),
        hyb.memory_footprint(),
        &mut |c| extended::hyb_spmm(&hyb, &b, k, c),
    );

    println!(
        "\nELL pads every vertex to the hub degree ({}); sorting (SELL) and",
        p.max_row_nnz
    );
    println!(
        "spilling (HYB, ELL width {}) keep the regular part tight.",
        hyb.ell().width()
    );
}
