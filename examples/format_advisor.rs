//! Format selection from matrix properties — the related-work idea
//! ([18], [9] in the paper) of predicting the best format from structural
//! metrics, then checking the prediction by measuring.
//!
//! Two advisors compete here:
//! * a heuristic straight from the paper's conclusions (§6.1/§6.2): high
//!   column ratio kills ELL; very regular matrices love it; good spatial
//!   locality rewards BCSR; otherwise CSR is the safe default;
//! * the harness [`Planner`](spmm_bench::harness::Planner), which scores
//!   each format with the calibrated roofline model and picks the highest
//!   predicted MFLOPS.
//!
//! Every measurement runs through the plan/execute engine: the planner
//! builds the conversion route and tile shape, the executor owns the
//! buffers, and the timed passes are allocation-free.
//!
//! ```text
//! cargo run --release --example format_advisor
//! ```

use std::time::Instant;

use spmm_bench::core::{DenseMatrix, MatrixProperties, SparseFormat};
use spmm_bench::harness::{Executor, Params, Planner, Variant};
use spmm_bench::matgen;

/// Predict the best format for a serial SpMM from the Table 5.1 metrics.
fn advise(p: &MatrixProperties) -> SparseFormat {
    // ELL pays `rows * max` work: only worth it when padding is tiny.
    if p.column_ratio <= 1.5 && p.ell_efficiency >= 0.8 {
        return SparseFormat::Ell;
    }
    // Tight bandwidth + meaty rows = dense-ish blocks for BCSR.
    if p.bandwidth < 4 * p.max_row_nnz && p.avg_row_nnz >= 16.0 {
        return SparseFormat::Bcsr;
    }
    SparseFormat::Csr
}

fn params_for(format: SparseFormat, k: usize, variant: Variant) -> Params {
    Params {
        format,
        variant,
        k,
        ..Params::default()
    }
}

fn main() {
    let k = 32;
    let planner = Planner::new();
    println!(
        "{:<16} {:>7} {:>9} | {:<9} {:<9} {:<9} {:>9} agreement",
        "matrix", "ratio", "ell-eff", "advised", "modeled", "measured", "tile"
    );

    let mut heuristic_hits = 0;
    let mut model_hits = 0;
    let mut total = 0;
    for spec in matgen::full_suite() {
        let coo = spec.generate(0.02, 11);
        let props = coo.properties();
        let advised = advise(&props);

        // The engine's tile choice for the advised format: plan a tiled
        // run and read the shape the perf model picked.
        let tile = planner
            .plan(&props, &params_for(advised, k, Variant::Tiled))
            .ok()
            .and_then(|p| p.tile);

        // Measure every paper format through the plan/execute engine, and
        // keep the planner's predicted MFLOPS alongside the measured time.
        let b = DenseMatrix::from_fn(coo.cols(), k, |i, j| ((i + j) % 7) as f64 - 3.0);
        let mut best: Option<(SparseFormat, f64)> = None;
        let mut modeled_best: Option<(SparseFormat, f64)> = None;
        for format in SparseFormat::PAPER {
            let plan = planner
                .plan(&props, &params_for(format, k, Variant::Normal))
                .expect("paper formats plan");
            if let Some(pred) = plan.predicted_mflops {
                if modeled_best.is_none() || pred > modeled_best.unwrap().1 {
                    modeled_best = Some((format, pred));
                }
            }
            let mut exec = Executor::new(plan);
            exec.prepare(&coo, &b).expect("paper formats construct");
            // One warm-up, then time two allocation-free passes.
            exec.execute(&b, &[]).expect("paper formats execute");
            let start = Instant::now();
            exec.execute(&b, &[]).expect("paper formats execute");
            exec.execute(&b, &[]).expect("paper formats execute");
            let t = start.elapsed().as_secs_f64() / 2.0;
            if best.is_none() || t < best.unwrap().1 {
                best = Some((format, t));
            }
        }
        let (winner, _) = best.expect("four formats measured");
        let modeled = modeled_best.expect("model scores cpu runs").0;

        let heuristic_agrees = winner == advised;
        heuristic_hits += usize::from(heuristic_agrees);
        model_hits += usize::from(winner == modeled);
        total += 1;
        println!(
            "{:<16} {:>7.1} {:>9.2} | {:<9} {:<9} {:<9} {:>9} {}",
            spec.name,
            props.column_ratio,
            props.ell_efficiency,
            advised.name(),
            modeled.name(),
            winner.name(),
            tile.map_or("-".to_string(), |t| format!(
                "w{}xmr{}",
                t.panel_w, t.row_block
            )),
            if heuristic_agrees { "yes" } else { "no" },
        );
    }
    println!(
        "\nheuristic matched the measured winner on {heuristic_hits}/{total} matrices, \
         the planner's roofline model on {model_hits}/{total}"
    );
    println!("(the paper's point stands: properties guide, but there is no universal formula)");
}
