//! Format selection from matrix properties — the related-work idea
//! ([18], [9] in the paper) of predicting the best format from structural
//! metrics, then checking the prediction by measuring.
//!
//! The heuristics come straight from the paper's conclusions (§6.1/§6.2):
//! high column ratio kills ELL; very regular matrices love it; good
//! spatial locality rewards BCSR; otherwise CSR is the safe default.
//!
//! Alongside the format, the advisor recommends a tile shape for the
//! cache-blocked engine ([`spmm_bench::kernels::tiled`]): panel width from
//! the host cache model, register rows from the matrix shape.
//!
//! ```text
//! cargo run --release --example format_advisor
//! ```

use std::time::Instant;

use spmm_bench::core::{DenseMatrix, MatrixProperties, SparseFormat};
use spmm_bench::kernels::tiled::TileConfig;
use spmm_bench::kernels::FormatData;
use spmm_bench::matgen;
use spmm_bench::perfmodel::{select_tile_shape, MachineProfile, SpmmWorkload, TileShape};

/// Predict the best format for a serial SpMM from the Table 5.1 metrics.
fn advise(p: &MatrixProperties) -> SparseFormat {
    // ELL pays `rows * max` work: only worth it when padding is tiny.
    if p.column_ratio <= 1.5 && p.ell_efficiency >= 0.8 {
        return SparseFormat::Ell;
    }
    // Tight bandwidth + meaty rows = dense-ish blocks for BCSR.
    if p.bandwidth < 4 * p.max_row_nnz && p.avg_row_nnz >= 16.0 {
        return SparseFormat::Bcsr;
    }
    SparseFormat::Csr
}

/// Recommend a tile shape for the cache-blocked engine on this host: the
/// column-locality window comes from the structural metrics (banded
/// matrices revisit a band about as wide as their fullest row; scattered
/// ones touch all of B).
fn advise_tile(props: &MatrixProperties, format: SparseFormat, k: usize) -> TileShape {
    let window = if props.bandwidth < props.cols / 2 {
        (2 * props.max_row_nnz).max(props.bandwidth)
    } else {
        props.cols
    };
    let workload = SpmmWorkload::new(
        format,
        props.rows,
        props.cols,
        props.nnz,
        props.nnz,
        props.max_row_nnz,
        props.nnz * 12,
        1,
        k,
    )
    .with_col_window(window);
    select_tile_shape(
        &MachineProfile::container_host(),
        &workload,
        &spmm_bench::kernels::optimized::SUPPORTED_K,
    )
}

fn main() {
    let k = 32;
    println!(
        "{:<16} {:>7} {:>9} | {:<9} {:<9} {:>9} agreement",
        "matrix", "ratio", "ell-eff", "advised", "measured", "tile"
    );

    let mut agreements = 0;
    let mut total = 0;
    for spec in matgen::full_suite() {
        let coo = spec.generate(0.02, 11);
        let props = coo.properties();
        let advised = advise(&props);
        let tile = advise_tile(&props, advised, k);

        // Measure every format serially and crown the real winner.
        let b = DenseMatrix::from_fn(coo.cols(), k, |i, j| ((i + j) % 7) as f64 - 3.0);
        let mut c = DenseMatrix::zeros(coo.rows(), k);
        let mut best: Option<(SparseFormat, f64)> = None;
        for format in SparseFormat::PAPER {
            let data = FormatData::from_coo(format, &coo, 4).expect("formats construct");
            // One warm-up, then time two passes.
            data.spmm_serial(&b, k, &mut c);
            let start = Instant::now();
            data.spmm_serial(&b, k, &mut c);
            data.spmm_serial(&b, k, &mut c);
            let t = start.elapsed().as_secs_f64() / 2.0;
            if best.is_none() || t < best.as_ref().map(|b| b.1).unwrap_or(f64::MAX) {
                best = Some((format, t));
            }
        }
        let (winner, _) = best.expect("four formats measured");

        let agree = winner == advised;
        agreements += usize::from(agree);
        total += 1;
        let cfg = TileConfig::new(tile.panel_w, tile.row_block);
        println!(
            "{:<16} {:>7.1} {:>9.2} | {:<9} {:<9} {:>9} {}",
            spec.name,
            props.column_ratio,
            props.ell_efficiency,
            advised.name(),
            winner.name(),
            format!("w{}xmr{}", cfg.panel_w, cfg.row_block),
            if agree { "yes" } else { "no" },
        );
    }
    println!("\nheuristic matched the measured winner on {agreements}/{total} matrices");
    println!("(the paper's point stands: properties guide, but there is no universal formula)");
}
