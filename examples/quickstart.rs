//! Quickstart: build a sparse matrix, format it, multiply, verify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spmm_bench::core::{
    max_rel_error, BcsrMatrix, CooMatrix, CsrMatrix, DenseMatrix, EllMatrix, MemoryFootprint,
};
use spmm_bench::kernels::serial;

fn main() {
    // 1. Assemble a sparse matrix from (row, col, value) triplets — the
    //    same COO form a MatrixMarket file loads into.
    let coo = CooMatrix::<f64>::from_triplets(
        6,
        6,
        &[
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
            (3, 3, 4.0),
            (3, 4, -1.0),
            (4, 3, -1.0),
            (4, 4, 4.0),
            (4, 5, -1.0),
            (5, 4, -1.0),
            (5, 5, 4.0),
        ],
    )
    .expect("triplets are in bounds");

    println!("matrix properties: {}", coo.properties());

    // 2. Compress into the study formats.
    let csr = CsrMatrix::from_coo(&coo);
    let ell = EllMatrix::from_coo(&coo).expect("ELL constructs");
    let bcsr = BcsrMatrix::from_coo(&coo, 2).expect("block size 2 is valid");
    println!(
        "footprints: coo={}B csr={}B ell={}B bcsr(2x2)={}B",
        coo.memory_footprint(),
        csr.memory_footprint(),
        ell.memory_footprint(),
        bcsr.memory_footprint(),
    );

    // 3. Multiply by a dense matrix with k = 4 columns.
    let k = 4;
    let b = DenseMatrix::from_fn(6, k, |i, j| (i + j) as f64);
    let mut c = DenseMatrix::zeros(6, k);
    serial::csr_spmm(&csr, &b, k, &mut c);

    // 4. Verify against the COO reference multiply, as the suite does.
    let reference = coo.spmm_reference_k(&b, k);
    let err = max_rel_error(&c, &reference);
    println!("CSR SpMM max relative error vs reference: {err:.2e}");
    assert!(err < 1e-12);

    // Every format computes the same C.
    serial::ell_spmm(&ell, &b, k, &mut c);
    assert_eq!(c, reference);
    serial::bcsr_spmm(&bcsr, &b, k, &mut c);
    assert_eq!(c, reference);
    println!("all formats agree; C row 0 = {:?}", c.row(0));
}
