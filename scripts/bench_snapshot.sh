#!/usr/bin/env bash
# Wall-clock snapshot of the tiled SpMM engine vs the flat CSR kernels.
#
# Builds the release binary and writes BENCH_results.json at the repo root
# with MFLOPS per kernel and the tiled-over-flat speedups for
# k ∈ {128, 256, 512} on the banded (af23560, cant) and heavy-row (torso1)
# replica classes. Extra flags are forwarded (e.g. --quick, --sweep,
# --scale 0.5, --out path).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p spmm-harness --bin bench-snapshot
exec ./target/release/bench-snapshot "$@"
