//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}` with cloneable
//! receivers (std's mpsc receiver is single-consumer, so the thread pool
//! cannot use it directly). Implemented as a `Mutex<VecDeque>` + `Condvar`
//! queue — adequate for the pool's job-dispatch rate, where each message
//! fans out an entire parallel region.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (every clone competes for messages).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // No `T: Debug` bound, mirroring upstream: the payload is the
            // unsent message, which need not be printable.
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks. Unlike crossbeam this shim
        /// cannot observe receiver disconnection (the pool holds its
        /// receiver for the process lifetime, so the distinction is moot)
        /// and always succeeds.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so `iter` ends.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking while the channel is empty and at
        /// least one sender is alive. Returns `None` once the channel is
        /// empty and every sender has been dropped.
        pub fn recv_opt(&self) -> Option<T> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Some(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return None;
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// A blocking iterator over incoming messages; ends when the
        /// channel is empty and all senders are dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv_opt()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_opt(), Some(1));
            assert_eq!(rx.recv_opt(), Some(2));
        }

        #[test]
        fn iter_ends_when_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![7]);
        }

        #[test]
        fn cloned_receivers_split_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = std::thread::spawn(move || rx2.iter().count());
            let a = rx.iter().count();
            let b = h.join().unwrap();
            assert_eq!(a + b, 100);
        }

        #[test]
        fn blocking_receive_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv_opt());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Some(42));
        }
    }
}
