//! Offline stand-in for the tiny slice of `parking_lot` this workspace
//! uses: a poison-free [`Mutex`] and a [`Condvar`] whose `wait` takes the
//! guard by `&mut`. Backed by `std::sync`; the container image has no
//! crates.io access, so the workspace pins these vendored shims via
//! `[patch]`-free path dependencies.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that (like parking_lot) ignores poisoning: a
/// panic while holding the lock does not wedge later lockers.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable matching parking_lot's `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: later lockers are unaffected.
        assert_eq!(*m.lock(), 1);
    }
}
