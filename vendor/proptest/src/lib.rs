//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Supports the [`proptest!`] macro with a `#![proptest_config(...)]`
//! header, `arg in strategy` bindings, range and tuple strategies,
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` family.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-(test, case) seed, failures report the offending inputs but are
//! **not shrunk**, and there is no persistence of failing seeds. For this
//! suite — whose strategies build small matrices — that trade keeps the
//! dependency container-buildable while preserving the tests' coverage.

use std::ops::Range;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

/// Deterministic per-case generator (xoshiro256++ seeded from the test
/// name and case index).
#[derive(Debug, Clone)]
pub struct CaseRng {
    s: [u64; 4],
}

impl CaseRng {
    /// Seed from an arbitrary byte string and case number.
    pub fn new(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *slot = z ^ (z >> 31);
        }
        CaseRng { s }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..span` (span > 0).
    fn below(&mut self, span: u128) -> u128 {
        (self.next_u64() as u128) % span
    }
}

/// A value generator. Unlike upstream there is no intermediate value
/// tree: strategies generate final values directly (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut CaseRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut CaseRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut CaseRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut CaseRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut CaseRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut CaseRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{CaseRng, Strategy};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a proptest-based test module imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseRng, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case (non-panicking: the runner reports inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The test-definition macro: wraps each `fn name(arg in strategy, ...)`
/// into a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{@cfg ($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{@cfg ($crate::ProptestConfig::default()) $($rest)*}
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::CaseRng::new(__test_name, __case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        let __inputs: ::std::vec::Vec<::std::string::String> = vec![
                            $(format!(concat!("  ", stringify!($arg), " = {:?}"), &$arg)),+
                        ];
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs:\n{}",
                            __case,
                            __test_name,
                            __msg,
                            __inputs.join("\n")
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{@cfg ($cfg) $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = CaseRng::new("t", 0);
        for _ in 0..200 {
            let v = (1usize..5, -3i32..3).new_value(&mut rng);
            assert!((1..5).contains(&v.0));
            assert!((-3..3).contains(&v.1));
        }
    }

    #[test]
    fn vec_and_maps_compose() {
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            collection::vec((0..r, 0..c).prop_map(|(i, j)| i * 10 + j), 0..6)
        });
        let mut rng = CaseRng::new("compose", 1);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v.len() < 6);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = 0usize..1000;
        let a = s.new_value(&mut CaseRng::new("x", 3));
        let b = s.new_value(&mut CaseRng::new("x", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0usize..10, y in 0usize..10) {
            prop_assume!(x + y > 0);
            prop_assert!(x < 10);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x + y + 1, x + y);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn always_fails(x in 0usize..2) {
                prop_assert!(false, "forced");
            }
        }
        always_fails();
    }
}
