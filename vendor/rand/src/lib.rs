//! Offline stand-in for the slice of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng::gen`]/[`Rng::gen_range`] methods over the ranges the generators
//! draw from, and [`seq::index::sample`]. The generator is xoshiro256++ —
//! deterministic, seedable, and of ample quality for matrix synthesis
//! (this shim makes no reproducibility promise relative to upstream rand;
//! suite matrices are pinned by this repo's own seeds).

use std::ops::Range;

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: expands a 64-bit seed into xoshiro's 256-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types drawable by [`Rng::gen`] from the "standard" distribution.
pub trait StandardDraw {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

impl StandardDraw for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDraw for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl StandardDraw for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is below 2^-64 for the suite's tiny spans.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32, i16, u16, i8, u8);

/// The user-facing generator methods.
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: StandardDraw>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++, standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// `amount` distinct indices drawn uniformly from `0..length`,
        /// via a partial Fisher-Yates shuffle. Order is random.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            pool
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.gen_range(0..17);
            assert!(n < 17);
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval_and_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..100).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean {mean}");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = seq::index::sample(&mut rng, 50, 20);
        assert_eq!(picks.len(), 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(picks.iter().all(|&i| i < 50));
        // Full sample is a permutation.
        let mut all = seq::index::sample(&mut rng, 10, 10);
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
