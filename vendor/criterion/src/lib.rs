//! Offline stand-in for the slice of `criterion` this workspace uses:
//! benchmark groups with `sample_size`/`throughput`/`bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: one untimed warm-up iteration, then `sample_size`
//! timed iterations; the reported statistic is the median (robust to the
//! scheduler noise of a shared container). No HTML reports, no statistical
//! regression machinery — results print to stdout, one line per benchmark,
//! and the study harness (not this crate) is the archival instrument.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive a rate from the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (for SpMM: flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small default: these benches run single-core in CI containers.
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.to_string(), sample_size, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the work performed by one iteration of subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// End the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` once untimed (warm-up), then `sample_size` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("bench {label}: no samples (Bencher::iter never called)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().unwrap();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", rate_mega(n, median)),
        Throughput::Bytes(n) => format!(" ({:.1} MB/s)", rate_mega(n, median)),
    });
    println!(
        "bench {label}: median {} [min {} .. max {}] over {} samples{}",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len(),
        rate.unwrap_or_default()
    );
}

fn rate_mega(per_iter: u64, time: Duration) -> f64 {
    let secs = time.as_secs_f64();
    if secs <= 0.0 {
        return f64::INFINITY;
    }
    per_iter as f64 / secs / 1e6
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into one group runner (`pub fn $name()`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(4);
            g.throughput(Throughput::Elements(100));
            g.bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            g.finish();
        }
        // 1 warm-up + 4 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn macros_compose() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(sample_group, target);
        sample_group();
    }

    #[test]
    fn duration_formatting_spans_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
